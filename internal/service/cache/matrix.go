package cache

import (
	"container/list"
	"context"
	"sync"
	"time"

	"manirank/internal/obs"
)

// MatrixStats is a point-in-time snapshot of a MatrixCache's counters.
type MatrixStats struct {
	// Hits counts Do calls served a stored matrix from memory.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that found nothing stored in memory (builds,
	// joins, and disk restores).
	Misses uint64 `json:"misses"`
	// Coalesced counts Do calls that joined another caller's in-flight build
	// (a subset of Misses).
	Coalesced uint64 `json:"coalesced"`
	// Builds counts builder executions — the constructions actually paid.
	Builds uint64 `json:"builds"`
	// BuildsSkipped counts Do calls that returned a matrix without running
	// the builder: Hits + Coalesced + DiskHits. This is the tier's reason to
	// exist.
	BuildsSkipped uint64 `json:"builds_skipped"`
	// Evictions counts entries dropped under cost pressure.
	Evictions uint64 `json:"evictions"`
	// Rejected counts built values too large to admit at all (cost > budget).
	Rejected uint64 `json:"rejected"`
	// DiskHits counts Do calls served by restoring a persisted matrix (a
	// subset of Misses; zero without an attached Store).
	DiskHits uint64 `json:"disk_hits"`
	// DiskPuts counts successful write-throughs to the persistent store.
	DiskPuts uint64 `json:"disk_puts"`
	// DiskErrors counts persistent-store failures the cache absorbed.
	DiskErrors uint64 `json:"disk_errors"`
	// PeerHits counts Do calls served by a fleet peer (fetched matrix or
	// owner-side remote build; a subset of Misses, zero without a fleet).
	PeerHits uint64 `json:"peer_hits,omitempty"`
	// PeerMisses counts peer reads answered with an authoritative miss.
	PeerMisses uint64 `json:"peer_misses,omitempty"`
	// PeerErrors counts peer reads that failed and fell back to a local
	// build.
	PeerErrors uint64 `json:"peer_errors,omitempty"`
	// Entries is the current number of stored matrices.
	Entries int `json:"entries"`
	// CostUsed is the summed cost of the stored matrices (precedence
	// matrices charge n² cells each).
	CostUsed int64 `json:"cost_used"`
	// CostBudget is the configured cost capacity.
	CostBudget int64 `json:"cost_budget"`
	// InFlight is the current number of leader builds running.
	InFlight int `json:"in_flight"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any traffic. Disk
// restores count toward Misses here; the warm-serving rate including them is
// (Hits + DiskHits) / (Hits + Misses).
func (s MatrixStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// matrixEntry is one stored value on the recency list.
type matrixEntry struct {
	key   string
	value any
	cost  int64
}

// matrixFlight is one in-progress build concurrent callers coalesce onto.
type matrixFlight struct {
	done  chan struct{}
	value any
	err   error
}

// MatrixCache is the serving layer's precedence-matrix tier: a thread-safe
// store keyed by profile sub-digests whose admission is bounded by memory
// cost rather than entry count — a precedence matrix costs n² cells, so ten
// small profiles and one n=500 matrix are priced honestly against the same
// budget — with single-flight coalescing so concurrent requests over the
// same unseen profile run the O(n²·m) construction exactly once. Eviction
// is least-recently-used over whole entries until the new entry fits. An
// optional persistent Store under the memory tier (AttachStore) restores
// evicted or pre-restart matrices on miss instead of rebuilding them.
//
// The zero value is not usable; construct with NewMatrixCache.
type MatrixCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*matrixFlight

	store Store // nil: memory only
	codec Codec
	cost  func(value any) int64 // admission cost of a restored value

	counters MatrixCounters
}

// MatrixCounters exposes the matrix tier's live counters; like the result
// tier's Counters, the cache owns the atomics and the serving layer
// adopts the same pointers into its registry.
type MatrixCounters struct {
	// Hits counts Do calls served a stored matrix from memory.
	Hits *obs.Counter
	// Misses counts Do calls that found nothing stored in memory.
	Misses *obs.Counter
	// Coalesced counts Do calls that joined an in-flight build.
	Coalesced *obs.Counter
	// Builds counts builder executions — the constructions actually paid.
	Builds *obs.Counter
	// Evictions counts entries dropped under cost pressure.
	Evictions *obs.Counter
	// Rejected counts built values too large to admit at all.
	Rejected *obs.Counter
	// DiskHits counts Do calls served by restoring a persisted matrix.
	DiskHits *obs.Counter
	// DiskPuts counts successful write-throughs to the persistent store.
	DiskPuts *obs.Counter
	// DiskErrors counts persistent-store failures the cache absorbed.
	DiskErrors *obs.Counter
	// PeerHits counts Do calls served by a fleet peer.
	PeerHits *obs.Counter
	// PeerMisses counts peer reads answered with an authoritative miss.
	PeerMisses *obs.Counter
	// PeerErrors counts peer reads that failed and fell back to a build.
	PeerErrors *obs.Counter
}

// BuildsSkipped derives the tier's reason to exist: Do calls that
// returned a matrix without running the builder on this node (a peer hit
// skips the local build even though the owner paid one somewhere).
func (m MatrixCounters) BuildsSkipped() uint64 {
	return m.Hits.Value() + m.Coalesced.Value() + m.DiskHits.Value() + m.PeerHits.Value()
}

// NewMatrixCache returns a matrix cache with the given cost budget (for
// precedence matrices: total n² cells across entries). budget <= 0 disables
// storage — builds still coalesce, so a burst of concurrent requests over
// one profile pays one construction — making 0 the "cache off" switch the
// equivalence tests compare against.
func NewMatrixCache(budget int64) *MatrixCache {
	return &MatrixCache{
		budget:  budget,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*matrixFlight),
		counters: MatrixCounters{
			Hits:       new(obs.Counter),
			Misses:     new(obs.Counter),
			Coalesced:  new(obs.Counter),
			Builds:     new(obs.Counter),
			Evictions:  new(obs.Counter),
			Rejected:   new(obs.Counter),
			DiskHits:   new(obs.Counter),
			DiskPuts:   new(obs.Counter),
			DiskErrors: new(obs.Counter),
			PeerHits:   new(obs.Counter),
			PeerMisses: new(obs.Counter),
			PeerErrors: new(obs.Counter),
		},
	}
}

// Counters returns the tier's live counters for registry adoption.
func (c *MatrixCache) Counters() MatrixCounters { return c.counters }

// AttachStore puts the persistent tier under the cache: every admitted build
// is written through (encoded by codec), and a memory miss consults the
// store before building. cost prices a restored value for memory admission
// (for precedence matrices: Cells). Attach before serving traffic; the
// fields are not synchronised against concurrent Do calls.
func (c *MatrixCache) AttachStore(s Store, codec Codec, cost func(value any) int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = s
	c.codec = codec
	c.cost = cost
}

// Do returns the value for key: from the store on a hit, by joining an
// identical in-flight build when one exists, by restoring the persisted
// matrix when a Store is attached and holds the key, and otherwise by
// running build in the caller's goroutine. build returns (value, cost, err);
// successful values are stored when their cost fits the budget after
// evicting from the cold end. ctx bounds a follower's wait on another
// caller's flight — a flight can include disk restore I/O, not just the
// bounded in-memory O(n²·m) construction, so followers must honour
// cancellation exactly like the result tier's. The leader's own build is
// not cancelled (it is bounded compute whose result every future request
// wants). If build panics, followers fail with a dedicated sentinel error.
//
// MatrixFetchFunc is the fleet hook DoFetch tries between the disk tier
// and a local build: a bounded peer read (or remote owner-side build) of
// the serialized matrix. It returns the decoded value and its admission
// cost on a peer hit, nil on a miss, and asked=false when no peer was
// consulted at all.
type MatrixFetchFunc func(ctx context.Context) (value any, cost int64, asked bool, err error)

// hit reports the value came from the store (memory or disk); shared
// reports it came from another caller's build.
func (c *MatrixCache) Do(ctx context.Context, key string, build func() (value any, cost int64, err error)) (value any, hit, shared bool, err error) {
	return c.DoFetch(ctx, key, nil, build)
}

// DoFetch is Do with a fleet hook: after memory and disk miss, the
// single-flight leader tries fetch (when non-nil) before paying the
// O(n²·m) construction. A peer-fetched matrix is admitted and written
// through like a disk restore; a miss or error degrades to the local
// build. Outcomes land in PeerHits / PeerMisses / PeerErrors.
func (c *MatrixCache) DoFetch(ctx context.Context, key string, fetch MatrixFetchFunc, build func() (value any, cost int64, err error)) (value any, hit, shared bool, err error) {
	endLookup := obs.StartSpan(ctx, "matrix_lookup")
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.counters.Hits.Inc()
		c.ll.MoveToFront(el)
		v := el.Value.(*matrixEntry).value
		c.mu.Unlock()
		endLookup()
		return v, true, false, nil
	}
	c.counters.Misses.Inc()
	if f, ok := c.flights[key]; ok {
		c.counters.Coalesced.Inc()
		c.mu.Unlock()
		endLookup()
		defer obs.StartSpan(ctx, "matrix_wait")()
		select {
		case <-f.done:
			return f.value, false, true, f.err
		case <-ctx.Done():
			return nil, false, true, ctx.Err()
		}
	}
	f := &matrixFlight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	endLookup()

	// Resolve the flight even if build (or the disk restore) panics, so
	// followers never hang.
	completed := false
	defer func() {
		if !completed {
			c.finish(ctx, key, f, nil, 0, false, errMatrixBuildPanic)
		}
	}()
	if v, ok := c.restore(ctx, key); ok {
		completed = true
		c.mu.Lock()
		c.counters.DiskHits.Inc()
		c.storeLocked(key, v, c.cost(v))
		delete(c.flights, key)
		c.mu.Unlock()
		f.value = v
		close(f.done)
		return v, true, false, nil
	}
	if fetch != nil {
		if v, cost, ok := c.peerFetch(ctx, key, fetch); ok {
			completed = true
			var (
				store Store
				codec Codec
			)
			c.mu.Lock()
			c.storeLocked(key, v, cost)
			if c.budget > 0 {
				store, codec = c.store, c.codec
			}
			delete(c.flights, key)
			c.mu.Unlock()
			// Write through like a restore-from-elsewhere: the next restart
			// of THIS node should not need the peer again.
			if store != nil {
				c.persist(ctx, store, codec, key, v)
			}
			f.value = v
			close(f.done)
			return v, true, false, nil
		}
	}
	endBuild := obs.StartSpan(ctx, "matrix_build")
	v, cost, berr := build()
	endBuild()
	completed = true
	c.finish(ctx, key, f, v, cost, true, berr)
	return v, false, false, berr
}

// peerFetch runs the fleet hook and classifies its outcome into the peer
// counters.
func (c *MatrixCache) peerFetch(ctx context.Context, key string, fetch MatrixFetchFunc) (any, int64, bool) {
	defer obs.StartSpan(ctx, "matrix_peer_read")()
	v, cost, asked, err := fetch(ctx)
	switch {
	case !asked:
		return nil, 0, false
	case err != nil:
		c.counters.PeerErrors.Inc()
		return nil, 0, false
	case v == nil:
		c.counters.PeerMisses.Inc()
		return nil, 0, false
	default:
		c.counters.PeerHits.Inc()
		return v, cost, true
	}
}

// Peek returns the stored matrix for key from memory or the persistent
// store without touching the hit/miss/disk counters — the read path a node
// serves peer fetches from. A disk restore is admitted to memory at the
// attached cost function's price.
func (c *MatrixCache) Peek(ctx context.Context, key string) (any, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*matrixEntry).value
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()
	if v, ok := c.restore(ctx, key); ok {
		c.mu.Lock()
		c.storeLocked(key, v, c.cost(v))
		c.mu.Unlock()
		return v, true
	}
	return nil, false
}

// Keys returns the keys of every resident matrix — the enumeration
// re-owned-key warming walks after a membership change.
func (c *MatrixCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.items))
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*matrixEntry).key)
	}
	return out
}

// Put admits an externally produced value for key — the write path for
// matrices the serving layer patched incrementally rather than built through
// Do (a session mutation produces the matrix of a profile this tier has
// never seen, already paid for). The value is stored in memory under the
// usual cost budget and written through to the persistent store exactly like
// a fresh build, so a later Do on the same key — this process or the next —
// restores it instead of rebuilding. The caller must key by the digest of
// the profile the value actually summarises (its post-mutation state) and
// must not mutate value afterwards; in-flight Do builds for the same key are
// left alone (they produce an identical value by construction).
func (c *MatrixCache) Put(ctx context.Context, key string, value any, cost int64) {
	var (
		store Store
		codec Codec
	)
	c.mu.Lock()
	c.storeLocked(key, value, cost)
	if c.budget > 0 {
		store, codec = c.store, c.codec
	}
	c.mu.Unlock()
	if store != nil {
		c.persist(ctx, store, codec, key, value)
	}
}

// errMatrixBuildPanic resolves a flight whose builder panicked; the panic
// itself propagates to the leader's caller, and followers must see this
// sentinel rather than a misleading cancellation error.
var errMatrixBuildPanic = errorString("cache: matrix build panicked")

// errorString is a trivial const-able error type.
type errorString string

// Error returns the error message.
func (e errorString) Error() string { return string(e) }

// restore consults the persistent store for key, absorbing (and counting)
// any store or decode failure as a miss.
func (c *MatrixCache) restore(ctx context.Context, key string) (value any, ok bool) {
	c.mu.Lock()
	store, codec := c.store, c.codec
	c.mu.Unlock()
	if store == nil {
		return nil, false
	}
	defer obs.StartSpan(ctx, "matrix_disk_read")()
	data, _, found, err := store.Get(key)
	if err != nil {
		c.counters.DiskErrors.Inc()
		return nil, false
	}
	if !found {
		return nil, false
	}
	v, err := codec.Decode(data)
	if err != nil {
		store.Delete(key)
		c.counters.DiskErrors.Inc()
		return nil, false
	}
	return v, true
}

// persist writes one matrix through to the store (outside c.mu). Failures
// are absorbed and counted.
func (c *MatrixCache) persist(ctx context.Context, store Store, codec Codec, key string, value any) {
	defer obs.StartSpan(ctx, "matrix_disk_write")()
	data, err := codec.Encode(value)
	if err == nil {
		err = store.Put(key, data, time.Time{})
	}
	if err != nil {
		c.counters.DiskErrors.Inc()
	} else {
		c.counters.DiskPuts.Inc()
	}
}

// finish publishes a build's outcome, stores successes that fit (writing
// fresh builds through to the persistent store), and wakes the followers.
// fresh distinguishes a builder execution from a disk restore: only the
// former counts a Build and earns a write-through.
func (c *MatrixCache) finish(ctx context.Context, key string, f *matrixFlight, value any, cost int64, fresh bool, err error) {
	var (
		store Store
		codec Codec
	)
	c.mu.Lock()
	if err == nil {
		if fresh {
			c.counters.Builds.Inc()
		}
		c.storeLocked(key, value, cost)
		if fresh && c.budget > 0 {
			// Persist even when the memory tier rejected the value as
			// oversize: disk capacity is not cell-bounded, and restoring an
			// oversize matrix still skips its rebuild.
			store, codec = c.store, c.codec
		}
	}
	delete(c.flights, key)
	c.mu.Unlock()
	if store != nil {
		c.persist(ctx, store, codec, key, value)
	}
	f.value, f.err = value, err
	close(f.done)
}

// storeLocked admits (key, value) at the given cost, evicting from the LRU
// tail until it fits. Values costing more than the whole budget are rejected
// rather than flushing the tier for one entry. Callers hold c.mu.
func (c *MatrixCache) storeLocked(key string, value any, cost int64) {
	if c.budget <= 0 || cost > c.budget {
		if c.budget > 0 {
			c.counters.Rejected.Inc()
		}
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*matrixEntry)
		c.used += cost - e.cost
		e.value, e.cost = value, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&matrixEntry{key: key, value: value, cost: cost})
		c.used += cost
	}
	for c.used > c.budget {
		tail := c.ll.Back()
		e := tail.Value.(*matrixEntry)
		c.ll.Remove(tail)
		delete(c.items, e.key)
		c.used -= e.cost
		c.counters.Evictions.Inc()
	}
}

// Flush re-persists every resident matrix to the attached store and returns
// how many it wrote — the snapshot-on-shutdown half of warm restarts
// (write-through already persisted each build once; Flush repairs failed
// writes). With no store attached it is a no-op.
func (c *MatrixCache) Flush() int {
	c.mu.Lock()
	store, codec := c.store, c.codec
	if store == nil {
		c.mu.Unlock()
		return 0
	}
	type snap struct {
		key   string
		value any
	}
	snaps := make([]snap, 0, len(c.items))
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*matrixEntry)
		snaps = append(snaps, snap{e.key, e.value})
	}
	c.mu.Unlock()
	for _, s := range snaps {
		c.persist(context.Background(), store, codec, s.key, s.value)
	}
	return len(snaps)
}

// Stats returns a snapshot of the counters.
func (c *MatrixCache) Stats() MatrixStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MatrixStats{
		Hits:          c.counters.Hits.Value(),
		Misses:        c.counters.Misses.Value(),
		Coalesced:     c.counters.Coalesced.Value(),
		Builds:        c.counters.Builds.Value(),
		BuildsSkipped: c.counters.BuildsSkipped(),
		Evictions:     c.counters.Evictions.Value(),
		Rejected:      c.counters.Rejected.Value(),
		DiskHits:      c.counters.DiskHits.Value(),
		DiskPuts:      c.counters.DiskPuts.Value(),
		DiskErrors:    c.counters.DiskErrors.Value(),
		PeerHits:      c.counters.PeerHits.Value(),
		PeerMisses:    c.counters.PeerMisses.Value(),
		PeerErrors:    c.counters.PeerErrors.Value(),
		Entries:       len(c.items),
		CostUsed:      c.used,
		CostBudget:    c.budget,
		InFlight:      len(c.flights),
	}
}
