#!/usr/bin/env bash
# smoke_fleet.sh — end-to-end fleet smoke (DESIGN.md §13): boot three
# manirankd replicas peered over loopback, POST one request to every node,
# and assert the ring behaved as a single sharded cache: exactly one matrix
# build fleet-wide (per-ring single compute), every repeat answered from
# cache, and peer hits recorded on /metricsz. Then kill the replica that
# built and assert the survivors still answer the same request with 200 —
# a dead peer can slow a request, never fail it. Used by CI's serve-smoke
# stage.
set -euo pipefail

cd "$(dirname "$0")/.."

go build -o /tmp/manirankd ./cmd/manirankd

BASE_PORT="${FLEET_SMOKE_PORT:-18180}"
PIDS=()
URLS=()
for i in 0 1 2; do
  URLS+=("http://127.0.0.1:$((BASE_PORT + i))")
done
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

for i in 0 1 2; do
  PEERS=""
  for j in 0 1 2; do
    [ "$j" = "$i" ] && continue
    PEERS="${PEERS:+$PEERS,}${URLS[$j]}"
  done
  /tmp/manirankd -addr "127.0.0.1:$((BASE_PORT + i))" \
    -fleet-self "${URLS[$i]}" -peers "$PEERS" \
    -fleet-probe-interval 100ms -log-level warn &
  PIDS+=($!)
done

wait_healthy() {
  for _ in $(seq 1 50); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "replica $1 never became healthy" >&2
  exit 1
}
for url in "${URLS[@]}"; do wait_healthy "$url"; done
echo "3 replicas healthy"

REQ='{
  "method": "fair-kemeny",
  "profile": [
    [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19],
    [19,18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0],
    [1,0,3,2,5,4,7,6,9,8,11,10,13,12,15,14,17,16,19,18]
  ],
  "attributes": [{
    "name": "Gender",
    "values": ["M", "W"],
    "of": [0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1]
  }],
  "delta": 0.2
}'

# First sight of the request: exactly one solve somewhere in the ring.
FIRST="$(curl -sf -X POST "${URLS[0]}/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ")"
echo "$FIRST" | grep -q '"cached":false' || { echo "first request claimed a cache hit" >&2; exit 1; }
echo "$FIRST" | grep -q '"ranking":\[' || { echo "no ranking in first response" >&2; exit 1; }
R1="$(echo "$FIRST" | sed -n 's/.*"ranking":\[\([0-9,]*\)\].*/\1/p')"
sleep 0.5 # let the background push home the result with its ring owner

# Every other replica must now answer from the fleet's shared working set —
# a memory hit on the owner, a peer fetch everywhere else.
for url in "${URLS[1]}" "${URLS[2]}"; do
  OUT="$(curl -sf -X POST "$url/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ")"
  echo "$OUT" | grep -q '"cached":true' || { echo "$url recomputed a fleet-resident result: $OUT" >&2; exit 1; }
  RN="$(echo "$OUT" | sed -n 's/.*"ranking":\[\([0-9,]*\)\].*/\1/p')"
  [ "$R1" = "$RN" ] || { echo "$url served a different ranking" >&2; exit 1; }
done

# Per-ring single compute: exactly one matrix build across all three
# replicas, and at least one peer hit moved between them.
BUILDS=0
PEER_HITS=0
BUILDER=""
for i in 0 1 2; do
  M="$(curl -sf "${URLS[$i]}/metricsz")"
  B="$(echo "$M" | awk '$1 == "manirank_matrix_builds_total" {print int($2)}')"
  P="$(echo "$M" | awk '$1 == "manirank_cache_peer_hits_total{tier=\"result\"}" {print int($2)}')"
  BUILDS=$((BUILDS + B))
  PEER_HITS=$((PEER_HITS + P))
  [ "$B" -gt 0 ] && BUILDER=$i
  STATZ="$(curl -sf "${URLS[$i]}/statz")"
  echo "$STATZ" | grep -q '"nodes":3' || { echo "node $i statz has no 3-node fleet section" >&2; exit 1; }
  echo "$STATZ" | grep -q '"alive":3' || { echo "node $i statz does not see the full ring alive" >&2; exit 1; }
done
[ "$BUILDS" = 1 ] || { echo "fleet-wide matrix builds = $BUILDS, want exactly 1" >&2; exit 1; }
[ "$PEER_HITS" -gt 0 ] || { echo "no result peer hits recorded anywhere in the ring" >&2; exit 1; }
[ -n "$BUILDER" ] || { echo "no replica reports the matrix build" >&2; exit 1; }
echo "fleet smoke ok: 1 build (node $BUILDER), $PEER_HITS peer hits"

# Kill the builder. The survivors own their local copies or recompute;
# either way every request must still answer 200.
kill "${PIDS[$BUILDER]}"; wait "${PIDS[$BUILDER]}" 2>/dev/null || true
sleep 0.5 # two probe periods: survivors mark the corpse dead
for i in 0 1 2; do
  [ "$i" = "$BUILDER" ] && continue
  CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "${URLS[$i]}/v1/aggregate" \
    -H 'Content-Type: application/json' -d "$REQ")"
  [ "$CODE" = 200 ] || { echo "survivor $i answered $CODE after the kill" >&2; exit 1; }
  STATZ="$(curl -sf "${URLS[$i]}/statz")"
  echo "$STATZ" | grep -q '"alive":2' || { echo "survivor $i never marked the corpse dead: $STATZ" >&2; exit 1; }
done
echo "degradation smoke ok: survivors answer with one replica dead"
echo "fleet smoke ok"
