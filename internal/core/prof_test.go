package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"manirank/internal/aggregate"
	"manirank/internal/core"
	"manirank/internal/mallows"
	"manirank/internal/unfairgen"
)

func TestProfileLargeRepair(t *testing.T) {
	for _, n := range []int{1000, 10000, 20000} {
		tab, err := unfairgen.BinaryTable(n)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		modal, err := unfairgen.CalibratedBinaryModal(tab, 0.44, 0.31, rng)
		if err != nil {
			t.Fatal(err)
		}
		pl := mallows.MustNewPlackettLuce(modal, 0.6)
		p := pl.SampleProfile(100, rng)
		targets := core.Targets(tab, 0.33)
		borda, err := aggregate.Borda(p)
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		_, swaps, err := core.MakeMRFairWithPolicy(borda, targets, core.PolicyImpactful)
		fmt.Printf("n=%d: swaps=%d err=%v time=%v\n", n, swaps, err, time.Since(t0))
	}
}
