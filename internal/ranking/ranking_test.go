package ranking

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsIdentity(t *testing.T) {
	r := New(5)
	for i, c := range r {
		if c != i {
			t.Fatalf("New(5)[%d] = %d, want %d", i, c, i)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("identity should validate: %v", err)
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		r    Ranking
	}{
		{"duplicate", Ranking{0, 1, 1}},
		{"out of range high", Ranking{0, 1, 3}},
		{"negative", Ranking{0, -1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.r.Validate(); err == nil {
				t.Fatalf("Validate(%v) = nil, want error", tc.r)
			}
		})
	}
	if err := (Ranking{}).Validate(); err != nil {
		t.Fatalf("empty ranking should be valid: %v", err)
	}
}

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice([]int{2, 0, 1}); err != nil {
		t.Fatalf("valid slice rejected: %v", err)
	}
	if _, err := FromSlice([]int{2, 2, 1}); err == nil {
		t.Fatal("invalid slice accepted")
	}
}

func TestPositionsInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(30)
		r := Random(n, rng)
		pos := r.Positions()
		for i, c := range r {
			if pos[c] != i {
				t.Fatalf("Positions()[%d] = %d, want %d", c, pos[c], i)
			}
		}
	}
}

func TestPrefers(t *testing.T) {
	r := Ranking{3, 1, 0, 2}
	if !r.Prefers(3, 2) {
		t.Error("3 should be preferred over 2")
	}
	if r.Prefers(2, 3) {
		t.Error("2 should not be preferred over 3")
	}
}

func TestReverse(t *testing.T) {
	r := Ranking{3, 1, 0, 2}
	rev := r.Reverse()
	want := Ranking{2, 0, 1, 3}
	if !rev.Equal(want) {
		t.Fatalf("Reverse() = %v, want %v", rev, want)
	}
	if !r.Reverse().Reverse().Equal(r) {
		t.Fatal("double reverse should be identity")
	}
}

func TestMoveTo(t *testing.T) {
	cases := []struct {
		from, to int
		want     Ranking
	}{
		{0, 3, Ranking{1, 2, 3, 0, 4}},
		{3, 0, Ranking{3, 0, 1, 2, 4}},
		{2, 2, Ranking{0, 1, 2, 3, 4}},
		{4, 0, Ranking{4, 0, 1, 2, 3}},
	}
	for _, tc := range cases {
		r := New(5)
		r.MoveTo(tc.from, tc.to)
		if !r.Equal(tc.want) {
			t.Errorf("MoveTo(%d, %d) = %v, want %v", tc.from, tc.to, r, tc.want)
		}
		if err := r.Validate(); err != nil {
			t.Errorf("MoveTo(%d, %d) broke permutation: %v", tc.from, tc.to, err)
		}
	}
}

func TestMoveToPreservesPermutationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 2 + local.Intn(40)
		r := Random(n, rng)
		r.MoveTo(local.Intn(n), local.Intn(n))
		return r.IsValid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if got := (Ranking{2, 0, 1}).String(); got != "2 > 0 > 1" {
		t.Fatalf("String() = %q", got)
	}
}

func TestTotalPairs(t *testing.T) {
	for n, want := range map[int]int{0: 0, 1: 0, 2: 1, 5: 10, 90: 4005} {
		if got := TotalPairs(n); got != want {
			t.Errorf("TotalPairs(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSortByScoreDesc(t *testing.T) {
	r := SortByScoreDesc([]float64{1.5, 3.0, 0.5, 3.0})
	// Ties (ids 1 and 3 at score 3.0) break toward the lower id.
	want := Ranking{1, 3, 0, 2}
	if !r.Equal(want) {
		t.Fatalf("SortByScoreDesc = %v, want %v", r, want)
	}
}

func TestSortByPointsDesc(t *testing.T) {
	r := SortByPointsDesc([]int{2, 9, 9, 4})
	want := Ranking{1, 2, 3, 0}
	if !r.Equal(want) {
		t.Fatalf("SortByPointsDesc = %v, want %v", r, want)
	}
}

func TestProfileValidate(t *testing.T) {
	good := Profile{New(3), Ranking{2, 1, 0}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	if err := (Profile{}).Validate(); err == nil {
		t.Fatal("empty profile accepted")
	}
	if err := (Profile{New(3), New(4)}).Validate(); err == nil {
		t.Fatal("ragged profile accepted")
	}
	if err := (Profile{Ranking{0, 0, 1}}).Validate(); err == nil {
		t.Fatal("invalid member ranking accepted")
	}
}

func TestProfileClone(t *testing.T) {
	p := Profile{New(3)}
	q := p.Clone()
	q[0][0], q[0][1] = q[0][1], q[0][0]
	if !p[0].Equal(New(3)) {
		t.Fatal("Clone shares storage with original")
	}
}
