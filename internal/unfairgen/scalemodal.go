package unfairgen

import (
	"fmt"
	"math"
	"math/rand"

	"manirank/internal/attribute"
	"manirank/internal/ranking"
)

// CalibratedBinaryModal builds a modal ranking over a binary Gender x Race
// table whose attribute parities approximate the requested ARP values, in
// O(n log n). Candidates draw Normal(0,1) scores plus per-group effects; the
// effect magnitudes are computed in closed form from the Gaussian pairwise
// win probability (ARP = erf(effect / sqrt(1 + otherEffect^2))), with a few
// fixed-point iterations to account for the variance the other attribute's
// effect adds. The resulting IRP is emergent and reported by the harness.
//
// TargetModal is exact but needs O(n^2)-pair repair work; this constructor
// exists for the scalability studies (Fig. 6/7, Tables II/III) where n
// reaches 10^5.
func CalibratedBinaryModal(t *attribute.Table, arpGender, arpRace float64, rng *rand.Rand) (ranking.Ranking, error) {
	gender := t.Attr("Gender")
	race := t.Attr("Race")
	if gender == nil || race == nil {
		return nil, fmt.Errorf("unfairgen: table must have Gender and Race attributes")
	}
	if gender.DomainSize() != 2 || race.DomainSize() != 2 {
		return nil, fmt.Errorf("unfairgen: CalibratedBinaryModal needs binary attributes")
	}
	if arpGender < 0 || arpGender >= 1 || arpRace < 0 || arpRace >= 1 {
		return nil, fmt.Errorf("unfairgen: target ARPs must lie in [0, 1)")
	}
	// Fixed point: each attribute's effect sees the other's as extra noise.
	a, b := 0.0, 0.0
	for iter := 0; iter < 12; iter++ {
		a = math.Erfinv(arpGender) * math.Sqrt(1+b*b)
		b = math.Erfinv(arpRace) * math.Sqrt(1+a*a)
	}
	scores := make([]float64, t.N())
	for c := 0; c < t.N(); c++ {
		s := rng.NormFloat64()
		if gender.Of[c] == 0 {
			s += a
		} else {
			s -= a
		}
		if race.Of[c] == 0 {
			s += b
		} else {
			s -= b
		}
		scores[c] = s
	}
	return ranking.SortByScoreDesc(scores), nil
}
