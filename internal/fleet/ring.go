package fleet

import "sort"

// Rendezvous (highest-random-weight) hashing assigns every cache key an
// owner among the fleet's nodes: each (node, key) pair hashes to a weight
// and the key belongs to the node with the largest one. The assignment is a
// pure function of the node NAMES and the key — no coordination, no stored
// ring state, identical on every replica regardless of the order peers were
// configured in — and when a node joins or leaves, only the keys whose
// maximum weight involved that node move (~1/N of the space), which is the
// minimal-disruption property consistent hashing exists for. Rendezvous
// beats a token ring here because the fleet is small and static-configured:
// O(N) per lookup is nothing at N ≤ dozens, there are no virtual-node
// tuning knobs, and balance comes from the hash alone (ring_test.go pins it
// within a few percent of uniform at 3/5/8 nodes over 10⁵ digests).

// weight scores one (node, key) pair: FNV-1a over both strings with a
// splitmix64-style finalizer on top. FNV alone is too linear for HRW —
// nearby keys produce correlated scores across nodes — and the finalizer's
// avalanche restores independence, which is what the balance guarantee
// rests on.
func weight(node, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	h ^= 0xff // separator: ("ab","c") must not collide with ("a","bc")
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Owner returns the rendezvous owner of key among nodes, ignoring nodes for
// which eligible returns false (a nil eligible admits every node). It
// returns "" when no node is eligible. Ties — astronomically unlikely with
// 64-bit weights but cheap to make deterministic — break toward the
// lexicographically smaller name, so every replica resolves them
// identically.
func Owner(nodes []string, key string, eligible func(string) bool) string {
	best, bestW, found := "", uint64(0), false
	for _, n := range nodes {
		if eligible != nil && !eligible(n) {
			continue
		}
		w := weight(n, key)
		if !found || w > bestW || (w == bestW && n < best) {
			best, bestW, found = n, w, true
		}
	}
	return best
}

// Owners returns up to k eligible nodes in descending rendezvous weight for
// key — Owners(...)[0] is the owner, [1] the node that inherits the key if
// the owner leaves (and the hedge target for peer reads). Ordering is
// deterministic for any input ordering of nodes.
func Owners(nodes []string, key string, k int, eligible func(string) bool) []string {
	type scored struct {
		node string
		w    uint64
	}
	ranked := make([]scored, 0, len(nodes))
	for _, n := range nodes {
		if eligible != nil && !eligible(n) {
			continue
		}
		ranked = append(ranked, scored{n, weight(n, key)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].w != ranked[j].w {
			return ranked[i].w > ranked[j].w
		}
		return ranked[i].node < ranked[j].node
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]string, k)
	for i := range out {
		out[i] = ranked[i].node
	}
	return out
}
