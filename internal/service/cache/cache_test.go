package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// compute returns a constant-value compute func for Do.
func compute(v any) func() (any, bool, error) {
	return func() (any, bool, error) { return v, true, nil }
}

func mustDo(t *testing.T, c *Cache, key string, v any) (any, bool) {
	t.Helper()
	got, hit, _, err := c.Do(context.Background(), key, compute(v))
	if err != nil {
		t.Fatalf("Do(%q): %v", key, err)
	}
	return got, hit
}

func TestHitMissCounters(t *testing.T) {
	c := New(4, 0)
	if _, hit := mustDo(t, c, "a", 1); hit {
		t.Fatal("first access was a hit")
	}
	if v, hit := mustDo(t, c, "a", 2); !hit || v.(int) != 1 {
		t.Fatalf("second access: hit=%v v=%v, want cached 1", hit, v)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

// TestEvictionCounterAccuracy inserts capacity+extra distinct keys and
// checks the eviction counter equals exactly the overflow, that entry count
// is pinned at capacity, and that the evicted keys are the least recently
// used ones.
func TestEvictionCounterAccuracy(t *testing.T) {
	const capacity, extra = 8, 13
	c := New(capacity, 0)
	for i := 0; i < capacity+extra; i++ {
		mustDo(t, c, fmt.Sprintf("k%d", i), i)
	}
	s := c.Stats()
	if s.Evictions != extra {
		t.Fatalf("evictions = %d, want %d", s.Evictions, extra)
	}
	if s.Entries != capacity {
		t.Fatalf("entries = %d, want %d", s.Entries, capacity)
	}
	// The first `extra` keys left in LRU order; the rest are resident. Probe
	// residents first — probing an evicted key reinserts it and evicts a
	// resident, so order matters.
	for i := extra; i < capacity+extra; i++ {
		if _, hit := mustDo(t, c, fmt.Sprintf("k%d", i), -1); !hit {
			t.Fatalf("resident k%d missed", i)
		}
	}
	for i := 0; i < extra; i++ {
		if _, hit := mustDo(t, c, fmt.Sprintf("k%d", i), -1); hit {
			t.Fatalf("evicted k%d hit", i)
		}
	}
	// Reinserting the `extra` evicted keys displaced exactly `extra` more
	// residents: the counter must track every one.
	if s = c.Stats(); s.Evictions != 2*extra {
		t.Fatalf("evictions after reprobe = %d, want %d", s.Evictions, 2*extra)
	}
}

func TestLRURefreshOnHit(t *testing.T) {
	c := New(2, 0)
	mustDo(t, c, "a", 1)
	mustDo(t, c, "b", 2)
	mustDo(t, c, "a", 0) // refresh a; b is now LRU
	mustDo(t, c, "c", 3) // evicts b
	if _, hit := mustDo(t, c, "a", -1); !hit {
		t.Fatal("refreshed entry was evicted")
	}
	if _, hit := mustDo(t, c, "b", -1); hit {
		t.Fatal("LRU entry survived eviction")
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(4, time.Minute)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	mustDo(t, c, "a", 1)
	now = now.Add(30 * time.Second)
	if _, hit := mustDo(t, c, "a", -1); !hit {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(90 * time.Second) // 30s + 90s past the refreshless store... the hit did not refresh storedAt
	if _, hit := mustDo(t, c, "a", 2); hit {
		t.Fatal("entry survived past its TTL")
	}
	if s := c.Stats(); s.Expirations != 1 {
		t.Fatalf("expirations = %d, want 1", s.Expirations)
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New(0, 0)
	mustDo(t, c, "a", 1)
	if _, hit := mustDo(t, c, "a", 2); hit {
		t.Fatal("zero-capacity cache produced a hit")
	}
	if s := c.Stats(); s.Entries != 0 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want empty", s)
	}
}

func TestUncacheableNotStored(t *testing.T) {
	c := New(4, 0)
	if _, _, _, err := c.Do(context.Background(), "a", func() (any, bool, error) { return 1, false, nil }); err != nil {
		t.Fatal(err)
	}
	if _, hit := mustDo(t, c, "a", 2); hit {
		t.Fatal("uncacheable result was stored")
	}
}

func TestErrorNotStored(t *testing.T) {
	c := New(4, 0)
	boom := errors.New("boom")
	if _, _, _, err := c.Do(context.Background(), "a", func() (any, bool, error) { return nil, true, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, hit := mustDo(t, c, "a", 2); hit {
		t.Fatal("failed computation was stored")
	}
}

// TestSingleFlightCoalescing launches many concurrent identical requests and
// checks exactly one computation ran, everyone got its value, and the
// counters add up. Run under -race this also exercises the flight
// synchronisation.
func TestSingleFlightCoalescing(t *testing.T) {
	const callers = 32
	c := New(4, 0)
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	values := make([]any, callers)
	shareds := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, shared, err := c.Do(context.Background(), "key", func() (any, bool, error) {
				computes.Add(1)
				<-gate // hold the flight open until all callers joined or are blocked
				return "result", true, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			values[i], shareds[i] = v, shared
		}(i)
	}
	// Release the leader only after every other caller has joined its
	// flight — the leader is parked on the gate, so nobody can finish
	// early, and Coalesced must climb to callers-1. This makes the
	// leader/miss assertions below deterministic on any scheduler.
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Coalesced != callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d callers coalesced within 10s", c.Stats().Coalesced, callers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computation ran %d times, want 1", n)
	}
	leaderCount := 0
	for i, v := range values {
		if v.(string) != "result" {
			t.Fatalf("caller %d got %v", i, v)
		}
		if !shareds[i] {
			leaderCount++
		}
	}
	if leaderCount != 1 {
		t.Fatalf("%d callers thought they led the flight, want 1", leaderCount)
	}
	s := c.Stats()
	if s.Misses != callers || s.Coalesced != callers-1 || s.InFlight != 0 {
		t.Fatalf("stats = %+v, want %d misses, %d coalesced, 0 in flight", s, callers, callers-1)
	}
}

// TestCoalescedFollowerHonoursContext: a follower whose context dies while
// the leader is still computing returns promptly with the context error and
// leaks nothing; the leader's result is unaffected.
func TestCoalescedFollowerHonoursContext(t *testing.T) {
	c := New(4, 0)
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, _, err := c.Do(context.Background(), "key", func() (any, bool, error) {
			<-gate
			return 42, true, nil
		})
		if err != nil || v.(int) != 42 {
			t.Errorf("leader: v=%v err=%v", v, err)
		}
	}()
	// Wait until the flight is registered.
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, shared, err := c.Do(ctx, "key", compute(0))
	if !errors.Is(err, context.Canceled) || !shared {
		t.Fatalf("follower: shared=%v err=%v, want coalesced context.Canceled", shared, err)
	}
	close(gate)
	<-leaderDone
	if _, hit := mustDo(t, c, "key", -1); !hit {
		t.Fatal("leader result was not stored after follower abandoned")
	}
}
